//! Corpus query: find a pathway fragment across a model corpus, then
//! compose the best hit.
//!
//! The paper's title promises matching *and* composition; this example
//! runs them end to end over a slice of the synthetic BioModels corpus:
//!
//! 1. carve a connected query fragment out of one corpus model
//!    (`biomodels_corpus::query_fragment` — the "pathway of interest"),
//! 2. build a [`MatchIndex`] over the prepared corpus and search it
//!    (candidate generation → VF2 refinement → ranking),
//! 3. compose the best hit with another corpus model — reusing the very
//!    preparations the index already holds, so nothing is re-analysed.
//!
//! Run with: `cargo run --example corpus_query`
//!
//! [`MatchIndex`]: sbmlcompose::matching::MatchIndex

use sbmlcompose::compose::{BatchComposer, ComposeOptions, Composer};
use sbmlcompose::corpus::{corpus_slice, query_fragment};
use sbmlcompose::matching::MatchIndex;

fn main() {
    // A 12-model slice of the Figure 8 corpus (deterministic).
    let models = corpus_slice(40..52);
    let options = ComposeOptions::default();
    let composer = Composer::new(options.clone());
    let batch = BatchComposer::new(composer.clone());
    let prepared = batch.prepare_corpus(&models);

    // The pathway of interest: a 1-hop fragment of corpus model 45.
    let fragment = query_fragment(&models[5], 3, 1);
    println!(
        "query fragment {}: {} species, {} reactions",
        fragment.id,
        fragment.species.len(),
        fragment.reactions.len()
    );

    // Index the corpus and search it.
    let index = MatchIndex::build(&prepared, &options);
    let (nodes, edges, participants) = index.posting_stats();
    println!(
        "index over {} models: {} node keys, {} edge keys, {} participant keys",
        index.len(),
        nodes,
        edges,
        participants
    );
    let matches = index.query_corpus(&fragment);
    println!(
        "candidates after posting intersection: {} of {}",
        matches.candidates.len(),
        index.len()
    );
    for hit in &matches.exact {
        println!(
            "  exact hit in {} ({} mapped species, {} mapped reactions)",
            models[hit.model].id,
            hit.embedding.species.len(),
            hit.embedding.reactions.len()
        );
    }
    assert!(
        matches.exact.iter().any(|h| h.model == 5),
        "the fragment must at least hit its own host"
    );

    // Compose the best hit with a *different* corpus model — the
    // "assemble from what the search found" step, straight off the
    // prepared corpus the index already shares.
    let best = matches.exact[0].model;
    let partner = if best == 0 { 1 } else { 0 };
    let merged = composer.compose_prepared(&prepared[best], &prepared[partner]);
    println!(
        "composed best hit {} with {}: {} species, {} reactions ({})",
        models[best].id,
        models[partner].id,
        merged.model.species.len(),
        merged.model.reactions.len(),
        merged.log.stats()
    );
    assert!(merged.model.species.len() >= models[best].species.len());
}
