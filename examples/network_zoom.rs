//! Zooming in and out of a network (the paper's future-work items 2 & 4):
//! split a multi-pathway model into its connected components, zoom into the
//! neighbourhood of one species, and zoom out to the compartment level via
//! a graph quotient.
//!
//! Run with: `cargo run --example network_zoom`

use sbmlcompose::compose::{extract_submodel, split_components};
use sbmlcompose::graph::{quotient, species_reaction_graph};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::Model;

/// A model with two compartments and two disconnected pathways:
/// cytosolic glycolysis fragment + a nuclear import/export loop,
/// plus an isolated reporter species.
fn multi_pathway_model() -> Model {
    ModelBuilder::new("cellmap")
        .compartment("cytosol", 1.0)
        .compartment("nucleus", 0.2)
        // pathway 1 (cytosol)
        .species_in("glc", "cytosol", 10.0)
        .species_in("G6P", "cytosol", 0.0)
        .species_in("F6P", "cytosol", 0.0)
        .parameter("k_hex", 0.4)
        .parameter("k_iso", 0.3)
        .reaction("hexokinase", &["glc"], &["G6P"], "k_hex*glc")
        .reaction("isomerase", &["G6P"], &["F6P"], "k_iso*G6P")
        // pathway 2 (nucleus + transport)
        .species_in("TF_c", "cytosol", 5.0)
        .species_in("TF_n", "nucleus", 0.0)
        .parameter("k_in", 0.2)
        .parameter("k_out", 0.1)
        .reaction("import", &["TF_c"], &["TF_n"], "k_in*TF_c")
        .reaction("export", &["TF_n"], &["TF_c"], "k_out*TF_n")
        // isolated reporter
        .species_in("reporter", "cytosol", 1.0)
        .build()
}

fn main() {
    let model = multi_pathway_model();
    println!(
        "full model: {} species, {} reactions, {} compartments",
        model.species.len(),
        model.reactions.len(),
        model.compartments.len()
    );

    // ------------------------------------------------------------------
    // Decomposition (future work #2): weakly connected components.
    // ------------------------------------------------------------------
    let parts = split_components(&model);
    println!("\nsplit into {} connected components:", parts.len());
    for part in &parts {
        let ids: Vec<&str> = part.species.iter().map(|s| s.id.as_str()).collect();
        println!(
            "  {:20} {} reaction(s), species: {}",
            part.id,
            part.reactions.len(),
            ids.join(", ")
        );
    }
    assert_eq!(parts.len(), 3, "glycolysis, TF shuttle, reporter");

    // ------------------------------------------------------------------
    // Zoom in (future work #4): radius-1 neighbourhood of G6P.
    // ------------------------------------------------------------------
    let around_g6p = extract_submodel(&model, &["G6P"], 1);
    println!(
        "\nzoom(G6P, radius 1): {} species, {} reactions",
        around_g6p.species.len(),
        around_g6p.reactions.len()
    );
    assert_eq!(around_g6p.species.len(), 3, "glc, G6P, F6P");
    assert!(around_g6p.species_by_id("TF_n").is_none(), "other pathway excluded");

    // ------------------------------------------------------------------
    // Zoom out: quotient the species graph by compartment.
    // ------------------------------------------------------------------
    let graph = species_reaction_graph(&model);
    let by_compartment = quotient(&graph, |label| {
        model
            .species
            .iter()
            .find(|s| s.name.as_deref() == Some(label) || s.id == label)
            .map(|s| s.compartment.clone())
            .unwrap_or_else(|| label.to_owned())
    });
    println!("\ncompartment-level view:\n{}", by_compartment.graph);
    assert_eq!(by_compartment.graph.node_count(), 2);

    // The compartment view shows cytosol↔nucleus traffic at a glance.
    let cyto = by_compartment.graph.find_node("cytosol").expect("cytosol group");
    let nuc = by_compartment.graph.find_node("nucleus").expect("nucleus group");
    assert!(by_compartment.graph.has_edge(cyto, nuc, "1x"), "import traffic");
    assert!(by_compartment.graph.has_edge(nuc, cyto, "1x"), "export traffic");

    println!("round trip: composing the split parts restores the network —");
    let composer = sbmlcompose::compose::Composer::default();
    let rebuilt = sbmlcompose::compose::compose_many(&composer, &parts);
    println!(
        "  rebuilt: {} species, {} reactions (original {}, {})",
        rebuilt.model.species.len(),
        rebuilt.model.reactions.len(),
        model.species.len(),
        model.reactions.len()
    );
    assert_eq!(rebuilt.model.species.len(), model.species.len());
    assert_eq!(rebuilt.model.reactions.len(), model.reactions.len());
}
