//! Drug-interaction screening — the paper's opening motivation:
//! "in drug development ... one has to merge known networks and examine
//! topological variants arising from such composition."
//!
//! Two independently curated models — a disease pathway and a drug's
//! metabolism — share species (the target enzyme, the synonymously-named
//! substrate). Composition connects them automatically; simulating the
//! merged network reveals an interaction invisible in either model alone.
//!
//! Run with: `cargo run --example drug_interaction`

use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::mc2::{check_probability, Formula};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::sim::ode::simulate_rk4;

fn main() {
    // Disease pathway: substrate is converted by a target enzyme into a
    // harmful product. Enzyme is modelled as a catalytic species.
    let disease = ModelBuilder::new("disease_pathway")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 50.0)
        .species("enzyme_X", 10.0)
        .species("harmful_product", 0.0)
        .parameter("k_cat", 0.02)
        .reaction(
            "pathogenic_conversion",
            &["glc", "enzyme_X"],
            &["harmful_product", "enzyme_X"],
            "k_cat*glc*enzyme_X",
        )
        .build();

    // Drug model, curated elsewhere: the drug binds and sequesters the same
    // enzyme (note: the substrate appears under the synonym "dextrose").
    let drug = ModelBuilder::new("drug_model")
        .compartment("cell", 1.0)
        .species_named("sugar", "dextrose", 50.0)
        .species("enzyme_X", 10.0)
        .species("drug", 30.0)
        .species("inactive_complex", 0.0)
        .parameter("k_bind", 0.05)
        .reaction(
            "sequestration",
            &["drug", "enzyme_X"],
            &["inactive_complex"],
            "k_bind*drug*enzyme_X",
        )
        .build();

    // --- What the disease model alone predicts -------------------------
    let horizon = 20.0;
    let alone = simulate_rk4(&disease, horizon, 0.01).expect("simulate disease model");
    let harmful_alone = alone.final_value("harmful_product").unwrap();

    // --- Compose and re-simulate ---------------------------------------
    let composer = Composer::new(ComposeOptions::default());
    let merged = composer.compose(&disease, &drug);
    println!("merge log:");
    for line in merged.log.to_text().lines() {
        println!("  {line}");
    }
    assert_eq!(
        merged.model.species_by_id("glc").map(|s| s.id.as_str()),
        Some("glc"),
        "glucose/dextrose unified by the synonym table"
    );
    assert!(merged.model.species_by_id("drug").is_some());

    let together = simulate_rk4(&merged.model, horizon, 0.01).expect("simulate merged model");
    let harmful_together = together.final_value("harmful_product").unwrap();

    println!("\nharmful product after {horizon} time units:");
    println!("  disease model alone : {harmful_alone:8.3}");
    println!("  with drug (merged)  : {harmful_together:8.3}");
    let reduction = 100.0 * (1.0 - harmful_together / harmful_alone);
    println!("  reduction           : {reduction:7.1}%");
    assert!(
        harmful_together < harmful_alone * 0.8,
        "the drug should suppress the pathway in the composed network"
    );

    // --- §4.1.4-style property check on the composed model -------------
    // "With ≥ 90% probability the harmful product stays below 40 units."
    let phi = Formula::parse("G(harmful_product < 40)").expect("parse formula");
    let verdict = check_probability(&merged.model, &phi, 30, horizon, 0.9)
        .expect("Monte-Carlo check");
    println!(
        "\nMC2: P(G harmful_product < 40) ≈ {:.2} (95% CI {:.2}–{:.2}) over {} runs → {}",
        verdict.estimate,
        verdict.interval.0,
        verdict.interval.1,
        verdict.runs,
        if verdict.satisfied { "SATISFIED" } else { "violated" }
    );
}
