//! Building a model from a library of standard parts.
//!
//! The paper: "composition also allows models to be created from libraries
//! or databases of standard parts" and supports modellers "building new
//! models ... incrementally". This example keeps a small library of
//! reusable pathway fragments (import, a three-step conversion chain,
//! product export) and folds them into one model with
//! `compose_many_owned` — the incremental-session entry point that moves
//! the parts into the accumulator instead of cloning it at every step.
//!
//! Run with: `cargo run --example pathway_library`

use sbmlcompose::compose::{compose_many_owned, ComposeOptions, Composer};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{validate, Model, Severity};

/// Library part: constant import of a nutrient into the cell.
fn import_part() -> Model {
    ModelBuilder::new("part_import")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 0.0)
        .parameter("v_in", 2.0)
        .reaction("import", &[], &["glc"], "v_in")
        .build()
}

/// Library part: glucose → G6P → F6P chain (hexokinase + isomerase).
fn upper_glycolysis_part() -> Model {
    ModelBuilder::new("part_upper")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 0.0)
        .species("G6P", 0.0)
        .species("F6P", 0.0)
        .parameter("k_hex", 0.4)
        .parameter("kf_iso", 0.3)
        .parameter("kr_iso", 0.1)
        .reaction("hexokinase", &["glc"], &["G6P"], "k_hex*glc")
        .reversible_reaction("isomerase", &["G6P"], &["F6P"], "kf_iso*G6P - kr_iso*F6P")
        .build()
}

/// Library part: Michaelis–Menten conversion of F6P to product, written
/// through a function definition (the other common library shape).
fn payoff_part() -> Model {
    ModelBuilder::new("part_payoff")
        .compartment("cell", 1.0)
        .species("F6P", 0.0)
        .species("product", 0.0)
        .function("mm", &["S", "V", "K"], "V*S/(K+S)")
        .parameter("Vmax", 3.0)
        .parameter("Km", 8.0)
        .reaction("payoff", &["F6P"], &["product"], "mm(F6P, Vmax, Km)")
        .build()
}

/// Library part: first-order export/consumption of the product.
fn export_part() -> Model {
    ModelBuilder::new("part_export")
        .compartment("cell", 1.0)
        .species("product", 0.0)
        .parameter("k_out", 0.2)
        .reaction("export", &["product"], &[], "k_out*product")
        .build()
}

fn main() {
    let library = vec![import_part(), upper_glycolysis_part(), payoff_part(), export_part()];
    println!("library of {} parts:", library.len());
    for part in &library {
        println!(
            "  {:13} {} species, {} reactions",
            part.id,
            part.species.len(),
            part.reactions.len()
        );
    }

    let composer = Composer::new(ComposeOptions::default());
    let assembled = compose_many_owned(&composer, library);

    println!(
        "\nassembled model: {} species, {} reactions, {} parameters, {} function definitions",
        assembled.model.species.len(),
        assembled.model.reactions.len(),
        assembled.model.parameters.len(),
        assembled.model.function_definitions.len()
    );
    assert_eq!(assembled.model.species.len(), 4); // glc, G6P, F6P, product

    // Validate the assembly — the merge must produce well-formed SBML.
    let issues = validate(&assembled.model);
    let errors: Vec<_> = issues.iter().filter(|i| i.severity == Severity::Error).collect();
    assert!(errors.is_empty(), "assembled model invalid: {errors:?}");
    println!("validation: clean ({} warnings)", issues.len());

    // Simulate the assembled pathway to steady state.
    let trace = sbmlcompose::sim::ode::simulate_rk4(&assembled.model, 100.0, 0.01)
        .expect("simulate assembly");
    println!("\nsteady-state concentrations after t=100:");
    for species in &trace.species {
        println!("  {:8} {:8.3}", species, trace.final_value(species).unwrap());
    }
    // Mass balance: at steady state, influx v_in = efflux k_out * product
    // → product ≈ v_in / k_out = 10.
    let product = trace.final_value("product").unwrap();
    assert!((product - 10.0).abs() < 0.5, "steady-state product ≈ 10, got {product}");

    println!("\ncomposed SBML written to stdout (first lines):");
    let xml = sbmlcompose::model::write_sbml(&assembled.model);
    for line in xml.lines().take(12) {
        println!("  {line}");
    }
}
