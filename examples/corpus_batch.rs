//! Batch composition with prepared models: the paper's Figure 8 workload
//! ("compose each model of a corpus with every other") as a library call.
//!
//! The raw API re-derives each model's canonical content keys, indexes
//! and initial values inside every pairwise call; `Composer::prepare`
//! computes that analysis once per model, and `BatchComposer::all_pairs`
//! shares the `Arc`-wrapped preparations across the whole pair grid (and
//! across worker threads on multi-core hosts). Output is bit-for-bit
//! identical to raw pairwise composition.
//!
//! Run with: `cargo run --release --example corpus_batch`

use std::time::Instant;

use sbmlcompose::compose::{BatchComposer, ComposeOptions, Composer};

fn main() {
    // A small slice of the deterministic synthetic BioModels corpus —
    // the full 187-model grid is the `all_pairs` bench in compose-bench.
    let corpus = sbmlcompose::corpus::corpus_slice(40..80);
    let n = corpus.len();
    println!("corpus: {n} models, {} unordered pairs", n * (n - 1) / 2);

    let composer = Composer::new(ComposeOptions::default());

    // Baseline: the seed shape — every pair re-analyses both models.
    let started = Instant::now();
    let mut raw_conflicts = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            raw_conflicts += composer.compose(&corpus[i], &corpus[j]).log.conflict_count();
        }
    }
    let raw_seconds = started.elapsed().as_secs_f64();

    // Prepared: analyse each model once, share across all of its pairs.
    let batch = BatchComposer::new(composer.clone());
    let started = Instant::now();
    let prepared = batch.prepare_corpus(&corpus);
    let pairs = batch.all_pairs(&prepared);
    let batch_seconds = started.elapsed().as_secs_f64();

    let batch_conflicts: usize = pairs.iter().map(|p| p.conflicts).sum();
    assert_eq!(raw_conflicts, batch_conflicts, "engines must agree exactly");

    let largest = pairs.iter().max_by_key(|p| p.components).expect("non-empty grid");
    println!("raw pairwise       : {raw_seconds:.3}s");
    println!("prepared + batched : {batch_seconds:.3}s ({:.2}x)", raw_seconds / batch_seconds);
    println!(
        "largest composition: models #{} + #{} -> {} components ({} species, {} reactions)",
        largest.a, largest.b, largest.components, largest.species, largest.reactions
    );
    println!("total conflicts logged across the grid: {batch_conflicts}");
}
