//! Quickstart: the paper's three merge scenarios (Figures 1–3).
//!
//! Run with: `cargo run --example quickstart`

use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::Model;

/// Paper Fig. 1(a): A → B ⇄ C with rate constants k1, k2, k3.
fn fig1a() -> Model {
    ModelBuilder::new("fig1a")
        .compartment("cell", 1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.05)
        .parameter("k3", 0.02)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .build()
}

fn main() {
    let composer = Composer::new(ComposeOptions::default());

    // ------------------------------------------------------------------
    // Figure 1: merging two identical models — a + a = a.
    // ------------------------------------------------------------------
    let a = fig1a();
    let result = composer.compose(&a, &a);
    println!("=== Figure 1: identical models ===");
    println!(
        "input: {} species / {} reactions; composed: {} species / {} reactions",
        a.species.len(),
        a.reactions.len(),
        result.model.species.len(),
        result.model.reactions.len()
    );
    assert_eq!(result.model.species.len(), 3);
    assert_eq!(result.model.reactions.len(), 3);

    // ------------------------------------------------------------------
    // Figure 2: disjoint models — concatenation.
    // ------------------------------------------------------------------
    let de = ModelBuilder::new("fig2b")
        .compartment("cell", 1.0)
        .species("D", 5.0)
        .species("E", 0.0)
        .parameter("k4", 0.3)
        .reaction("r4", &["D"], &["E"], "k4*D")
        .build();
    let result = composer.compose(&a, &de);
    println!("\n=== Figure 2: disjoint models ===");
    println!(
        "composed: {} species / {} reactions (A,B,C + D,E)",
        result.model.species.len(),
        result.model.reactions.len()
    );
    assert_eq!(result.model.species.len(), 5);

    // ------------------------------------------------------------------
    // Figure 3: overlapping models — shared subnetwork merges once.
    // ------------------------------------------------------------------
    let extended = ModelBuilder::new("fig3a")
        .compartment("cell", 1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .species("D", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.05)
        .parameter("k3", 0.02)
        .parameter("k4", 0.01)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .reaction("r4", &["C"], &["D"], "k4*C")
        .build();
    let result = composer.compose(&extended, &fig1a());
    println!("\n=== Figure 3: overlapping models ===");
    println!(
        "composed: {} species / {} reactions (shared A→B⇄C merged once)",
        result.model.species.len(),
        result.model.reactions.len()
    );
    assert_eq!(result.model.species.len(), 4);
    assert_eq!(result.model.reactions.len(), 4);

    // The merge log is the paper's "warnings to a log file".
    println!("\nmerge log:");
    for line in result.log.to_text().lines() {
        println!("  {line}");
    }

    // Serialize the composed model as SBML.
    let xml = sbmlcompose::model::write_sbml(&result.model);
    println!("\ncomposed SBML ({} bytes):\n{}", xml.len(), &xml[..xml.len().min(600)]);
}
