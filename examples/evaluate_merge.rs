//! The paper's full §4.1 evaluation pipeline on one merge:
//!
//! 1. compose two models (SBMLCompose),
//! 2. §4.1.1 — textual comparison of the composed SBML against the
//!    expected SBML (order-aware canonical diff),
//! 3. §4.1.2/4.1.3 — simulate both and compare trajectories by residual
//!    sum of squares,
//! 4. §4.1.4 — check temporal-logic properties with the Monte-Carlo model
//!    checker.
//!
//! Run with: `cargo run --example evaluate_merge`

use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::mc2::{check_probability, Formula};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{write_sbml, Model};
use sbmlcompose::sim::ode::simulate_rk4;
use sbmlcompose::sim::trace::{rss_aligned, rss_per_species};
use sbmlcompose::textdiff::{sbml_equivalent, sbml_text_diff};

/// Model 1: upstream half of a cascade.
fn upstream() -> Model {
    ModelBuilder::new("upstream")
        .compartment("cell", 1.0)
        .species("signal", 100.0)
        .species("kinase_active", 0.0)
        .parameter("k_act", 0.08)
        .reaction("activation", &["signal"], &["kinase_active"], "k_act*signal")
        .build()
}

/// Model 2: downstream half, sharing `kinase_active`.
fn downstream() -> Model {
    ModelBuilder::new("downstream")
        .compartment("cell", 1.0)
        .species("kinase_active", 0.0)
        .species("response", 0.0)
        .parameter("k_resp", 0.15)
        .reaction("response_production", &["kinase_active"], &["response"], "k_resp*kinase_active")
        .build()
}

/// What a modeller would write by hand for the full cascade.
fn expected_cascade() -> Model {
    ModelBuilder::new("upstream") // composed model keeps the first model's id
        .compartment("cell", 1.0)
        .species("signal", 100.0)
        .species("kinase_active", 0.0)
        .species("response", 0.0)
        .parameter("k_act", 0.08)
        .parameter("k_resp", 0.15)
        .reaction("activation", &["signal"], &["kinase_active"], "k_act*signal")
        .reaction("response_production", &["kinase_active"], &["response"], "k_resp*kinase_active")
        .build()
}

fn main() {
    // --- 1. compose ------------------------------------------------------
    let composer = Composer::new(ComposeOptions::default());
    let result = composer.compose(&upstream(), &downstream());
    println!("composed: {} species, {} reactions", result.model.species.len(), result.model.reactions.len());

    // --- 2. §4.1.1 textual comparison -------------------------------------
    let composed_xml = write_sbml(&result.model);
    let expected_xml = write_sbml(&expected_cascade());
    let equivalent = sbml_equivalent(&composed_xml, &expected_xml).expect("well-formed SBML");
    println!("\n§4.1.1 textual comparison: {}", if equivalent { "EQUIVALENT" } else { "DIFFERENT" });
    if !equivalent {
        println!("{}", sbml_text_diff(&composed_xml, &expected_xml).unwrap());
    }
    assert!(equivalent, "composed SBML must match the hand-written cascade");

    // --- 3. §4.1.2/4.1.3 simulation + RSS ---------------------------------
    let horizon = 30.0;
    let composed_trace = simulate_rk4(&result.model, horizon, 0.01).expect("simulate composed");
    let expected_trace = simulate_rk4(&expected_cascade(), horizon, 0.01).expect("simulate expected");

    // §4.1.2 visual comparison: plot both simulations.
    println!("\n§4.1.2 visual comparison — composed model:");
    print!("{}", sbmlcompose::sim::ascii_plot(&composed_trace, &[], 64, 12));
    println!("\n§4.1.2 visual comparison — expected model:");
    print!("{}", sbmlcompose::sim::ascii_plot(&expected_trace, &[], 64, 12));
    let rss = rss_aligned(&expected_trace, &composed_trace).expect("shared species");
    println!("\n§4.1.3 residual sum of squares over {} samples: {rss:.3e}", expected_trace.len());
    for (species, value) in rss_per_species(&expected_trace, &composed_trace) {
        println!("  {species:16} RSS = {value:.3e}");
    }
    assert!(rss < 1e-9, "identical dynamics ⇒ RSS ≈ 0 (got {rss})");

    // --- 4. §4.1.4 Monte-Carlo model checking -----------------------------
    println!("\n§4.1.4 MC2 property checks on the composed model:");
    let properties = [
        ("G(response >= 0)", 0.95),
        ("F(response > 50)", 0.90),
        ("(response < 90) U (kinase_active > 5)", 0.80),
    ];
    for (text, threshold) in properties {
        let phi = Formula::parse(text).expect("parse");
        let verdict =
            check_probability(&result.model, &phi, 25, horizon, threshold).expect("check");
        println!(
            "  P({text}) ≈ {:.2} (CI {:.2}–{:.2}) vs θ={threshold} → {}",
            verdict.estimate,
            verdict.interval.0,
            verdict.interval.1,
            if verdict.satisfied { "SATISFIED" } else { "violated" }
        );
    }

    println!("\nmerge log:\n{}", result.log.to_text());
}
