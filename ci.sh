#!/usr/bin/env bash
# CI for the sbmlcompose workspace. Fully offline: the three external
# crates (rand/proptest/criterion) are vendored under vendor/.
#
#   ./ci.sh          build + test + doc gate + perf gates (chain, fig8, values)
#   ./ci.sh quick    build + test only
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q

echo "== COW differential harness (clone oracle vs zero-copy engine) =="
# tests/cow_differential.rs replays every scenario through both engines —
# the eager clone-on-adopt reference and the copy-on-write candidate —
# and asserts bit-identity. Run under the default build and again with
# the fault-injection hooks compiled in, so the proof holds for the
# exact binary the fault suite exercises.
cargo test -q --test cow_differential
cargo test -q --features fault-injection --test cow_differential

echo "== fault-injection suite (deterministic injected faults) =="
cargo test -q --features fault-injection --test fault_isolation

echo "== wire-protocol suite (frame codec + live daemon round-trips) =="
cargo test -q --test serve_protocol

echo "== cluster suite (shard daemons + coordinator, loopback TCP) =="
# In-process daemons on ephemeral ports: the coordinator must be
# bit-identical to a single-process daemon at shard counts 1/2/4 across
# all three semantics levels and under randomized UPSERT/REMOVE
# interleavings; a killed shard degrades reads (exit 4, shard named)
# and fails writes loudly.
cargo test -q --release --test cluster
cargo test -q --release --test cluster_e2e

echo "== incremental ≡ rebuild property suite (sharded MatchIndex) =="
# Random insert/remove interleavings replayed against a fresh build of
# the surviving corpus, across shard counts and every semantics level —
# an incrementally mutated index must answer bit-identically to one
# built from scratch, or UPSERT/REMOVE silently corrupt the daemon.
cargo test -q -p sbml-match --test properties

echo "== panic audit (fan-out modules) =="
# Containment boundaries (catch_unwind) only help if the code inside them
# is not sprinkled with *new* input-reachable unwrap/expect/panic sites.
# Ceilings are the audited counts (tests included); raising one requires
# justifying the new site in review.
panic_audit() {
    local file="$1" ceiling="$2"
    local count
    count=$(grep -c '\.unwrap()\|\.expect(\|panic!(' "$file" || true)
    echo "  ${file}: ${count} (ceiling: ${ceiling})"
    if (( count > ceiling )); then
        echo "FAIL: ${file} gained unaudited unwrap/expect/panic sites (${count} > ${ceiling})" >&2
        exit 1
    fi
}
panic_audit crates/sbml-compose/src/pipeline.rs 20
panic_audit crates/sbml-compose/src/batch.rs 6
# session.rs 12 -> 14 with the COW/pool refactor: two audited invariant
# expects (the installed session pool; the shared accumulator's base).
panic_audit crates/sbml-compose/src/session.rs 14
# New fan-out modules after the worker-pool refactor: the pool itself
# (spawn + chunking expects, two injected-panic test sites) and the
# parallel incoming-key build in prepared.rs.
panic_audit crates/sbml-compose/src/pool.rs 4
panic_audit crates/sbml-compose/src/prepared.rs 17
panic_audit crates/sbml-match/src/index.rs 0
panic_audit crates/sbml-match/src/vf2.rs 3

if [[ "${1:-}" != "quick" ]]; then
    echo "== docs (cargo doc --no-deps, warnings are errors) =="
    # Broken intra-doc links or malformed rustdoc fail the build.
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

    echo "== chain-scaling benchmark (writes BENCH_chain.json) =="
    cargo run --release -p compose-bench --bin chain_scaling

    # Perf gate: the session engine must stay >= 2x faster than the seed
    # pairwise fold on the length-128 chain.
    speedup=$(grep -o '"speedup_at_length_128": [0-9.]*' BENCH_chain.json | grep -o '[0-9.]*$')
    echo "length-128 speedup: ${speedup}x (gate: >= 2.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' || {
        echo "FAIL: chain-scaling speedup regressed below 2x" >&2
        exit 1
    }

    echo "== fig8 all-pairs benchmark (writes BENCH_fig8.json) =="
    cargo run --release -p compose-bench --bin all_pairs

    # Perf gate: prepared-and-shared model analysis must keep the
    # 187-model all-pairs workload >= 2x faster than per-pair recompute.
    speedup=$(grep -o '"speedup_prepared_reuse": [0-9.]*' BENCH_fig8.json | grep -o '[0-9.]*$')
    echo "all-pairs prepared-reuse speedup: ${speedup}x (gate: >= 2.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' || {
        echo "FAIL: fig8 all-pairs prepared-reuse speedup regressed below 2x" >&2
        exit 1
    }

    # Perf gate: copy-on-write base adoption must keep the per-pair fixed
    # cost (tiny duplicate-only push vs growing bases) >= 1.5x cheaper
    # than eager clone-on-adopt.
    speedup=$(grep -o '"speedup_fixed_cost": [0-9.]*' BENCH_fig8.json | grep -o '[0-9.]*$')
    echo "fig8 fixed-cost speedup (COW adoption): ${speedup}x (gate: >= 1.5)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 1.5) ? 0 : 1 }' || {
        echo "FAIL: COW fixed-cost speedup regressed below 1.5x" >&2
        exit 1
    }

    echo "== long-chain values benchmark (writes BENCH_values.json) =="
    cargo run --release -p compose-bench --bin long_chain_values

    # Perf gate: incremental initial-value maintenance must keep the
    # length-128 value-heavy chain >= 2x faster than per-push re-collect.
    speedup=$(grep -o '"speedup_incremental_values_at_length_128": [0-9.]*' BENCH_values.json | grep -o '[0-9.]*$')
    echo "length-128 incremental-values speedup: ${speedup}x (gate: >= 2.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' || {
        echo "FAIL: long-chain incremental-values speedup regressed below 2x" >&2
        exit 1
    }

    echo "== corpus match benchmark (writes BENCH_match.json) =="
    cargo run --release -p compose-bench --bin corpus_match

    # Perf gate: posting-list candidate generation must stay >= 5x faster
    # than the naive per-model VF2 scan over the 187-model fig8 corpus
    # (the bench also asserts indexed hit sets == naive hit sets for
    # every query under every semantics level before timing anything).
    speedup=$(grep -o '"speedup_candidate_generation": [0-9.]*' BENCH_match.json | grep -o '[0-9.]*$')
    echo "corpus-match candidate-generation speedup: ${speedup}x (gate: >= 5.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 5.0) ? 0 : 1 }' || {
        echo "FAIL: corpus-match candidate generation regressed below 5x" >&2
        exit 1
    }

    echo "== pipeline conflict benchmark (writes BENCH_pipeline.json) =="
    cargo run --release -p compose-bench --bin pipeline_conflict

    # Perf gate: the pipelined engine (merge-pass dependency DAG at 4
    # configured threads + incremental cached-key renaming) must stay
    # >= 1.5x faster than the serial full-recompute engine on the
    # conflict-heavy corpus chain. BENCH_pipeline.json records the
    # configured threads and the host parallelism the run actually had.
    speedup=$(grep -o '"speedup_pipelined_vs_serial": [0-9.]*' BENCH_pipeline.json | grep -o '[0-9.]*$')
    echo "conflict-corpus pipelined speedup: ${speedup}x (gate: >= 1.5)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 1.5) ? 0 : 1 }' || {
        echo "FAIL: pipelined-vs-serial speedup regressed below 1.5x" >&2
        exit 1
    }

    echo "== snapshot load benchmark (writes BENCH_serve.json) =="
    cargo run --release -p compose-bench --bin serve_snapshot

    # Perf gate: loading a prepared-corpus snapshot (decode only — no
    # re-canonicalisation, no re-analysis, lazy graphs/refs) must stay
    # >= 10x faster than rebuilding the corpus from SBML XML. The bench
    # asserts posting-list stats and a 23-query battery are identical
    # between the loaded and rebuilt corpus before timing anything.
    speedup=$(grep -o '"speedup_snapshot_load": [0-9.]*' BENCH_serve.json | grep -o '[0-9.]*$')
    echo "snapshot-load speedup: ${speedup}x (gate: >= 10.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 10.0) ? 0 : 1 }' || {
        echo "FAIL: snapshot-load speedup regressed below 10x" >&2
        exit 1
    }

    echo "== 10k-model scale benchmark (writes BENCH_scale.json) =="
    cargo run --release -p compose-bench --bin index_scale

    # Perf gate: absorbing a 100-model batch through MatchIndex::insert
    # must stay >= 10x cheaper than rebuilding the 10k-model index from
    # scratch — the whole point of the daemon's in-place UPSERT path.
    # (The bench asserts bit-identical answers across shard counts
    # 1/2/4/8 before timing anything.)
    speedup=$(grep -o '"speedup_incremental_append": [0-9.]*' BENCH_scale.json | grep -o '[0-9.]*$')
    echo "incremental-append speedup: ${speedup}x (gate: >= 10.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 10.0) ? 0 : 1 }' || {
        echo "FAIL: incremental append fell below 10x cheaper than a full rebuild" >&2
        exit 1
    }

    # Perf gate: scatter-gather query latency must stay flat-to-sublinear
    # in the shard count — 8 shards may cost at most 1.5x a single shard
    # on the same 10k corpus, or partitioning overhead has eaten the
    # parallelism sharding exists to provide.
    ratio=$(grep -o '"latency_ratio_shards_8_vs_1": [0-9.]*' BENCH_scale.json | grep -o '[0-9.]*$')
    echo "8-shard vs 1-shard latency ratio: ${ratio} (gate: <= 1.5)"
    awk -v r="$ratio" 'BEGIN { exit (r <= 1.5) ? 0 : 1 }' || {
        echo "FAIL: scatter-gather latency grew superlinearly with shard count" >&2
        exit 1
    }

    echo "== cluster scatter-gather benchmark (writes BENCH_cluster.json) =="
    cargo run --release -p compose-bench --bin cluster_scatter

    # Perf gate: a MATCH through the coordinator fronting 4 shard
    # daemons may cost at most 1.5x the same request through a 1-shard
    # cluster over the 10k corpus — the scatter fans out concurrently,
    # so the fan-out must not eat the partitioning. (The bench asserts
    # both widths answer byte-identically to a single-process daemon
    # before timing anything.)
    ratio=$(grep -o '"latency_ratio_cluster_4_vs_1": [0-9.]*' BENCH_cluster.json | grep -o '[0-9.]*$')
    echo "4-shard vs 1-shard cluster MATCH latency ratio: ${ratio} (gate: <= 1.5)"
    awk -v r="$ratio" 'BEGIN { exit (r <= 1.5) ? 0 : 1 }' || {
        echo "FAIL: coordinator scatter-gather latency grew superlinearly with shard count" >&2
        exit 1
    }

    # Perf gate: absorbing a 100-model batch as coordinator-routed
    # UPSERT frames must stay >= 10x cheaper than re-preparing and
    # rebuilding the 10k index from source models.
    speedup=$(grep -o '"speedup_cluster_upsert": [0-9.]*' BENCH_cluster.json | grep -o '[0-9.]*$')
    echo "coordinator UPSERT speedup: ${speedup}x (gate: >= 10.0)"
    awk -v s="$speedup" 'BEGIN { exit (s >= 10.0) ? 0 : 1 }' || {
        echo "FAIL: coordinator UPSERT fell below 10x cheaper than a rebuild" >&2
        exit 1
    }

    echo "== guard overhead benchmark (writes BENCH_robust.json) =="
    cargo run --release -p compose-bench --bin robust_overhead

    # Perf gate: fault containment + budget metering on the fast path
    # (push_guarded with an unlimited meter vs plain push) must cost
    # <= 5%. The value can be negative (noise); the grep is sign-tolerant.
    overhead=$(grep -o '"guard_overhead_pct": *[-0-9.]*' BENCH_robust.json | grep -o '[-0-9.]*$')
    echo "guard overhead: ${overhead}% (gate: <= 5.0)"
    awk -v o="$overhead" 'BEGIN { exit (o <= 5.0) ? 0 : 1 }' || {
        echo "FAIL: guard overhead exceeded 5%" >&2
        exit 1
    }
fi

echo "CI OK"
