//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container this workspace builds in has no crates.io access, so this
//! vendored crate provides the small slice of `rand` the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range` over integer and float
//! ranges. The generator is SplitMix64 — statistically fine for synthetic
//! corpora and simulation sampling, deterministic across runs and
//! platforms, and **not** the ChaCha12 generator of the real `StdRng`
//! (streams differ from upstream; everything in-tree only relies on
//! in-tree determinism).

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the `rand` trait, reduced to what we call).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the whole value space (`rng.gen()`).
pub trait Standard: Sized {
    /// Sample from `raw` 64 random bits.
    fn from_raw(raw: u64) -> Self;
}

impl Standard for f64 {
    fn from_raw(raw: u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_raw(raw: u64) -> f32 {
        (raw >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_raw(raw: u64) -> u64 {
        raw
    }
}

impl Standard for u32 {
    fn from_raw(raw: u64) -> u32 {
        (raw >> 32) as u32
    }
}

impl Standard for bool {
    fn from_raw(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Ranges `gen_range` accepts for a sample type `T`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::from_raw(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let unit = f64::from_raw(rng.next_u64()) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full space (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_raw(self.next_u64())
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_raw(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// ChaCha12-backed `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&i));
            let j = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&j));
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
