//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `Criterion::bench_function`/`benchmark_group`, `BenchmarkGroup`
//! with `bench_function`/`bench_with_input`/`sample_size`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! median-of-samples wall clock (no outlier analysis, no plots, no
//! statistical regression); results print one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Time `f`, recording the median of several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

fn run_one(full_name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { samples, median: Duration::ZERO };
    f(&mut bencher);
    println!("bench {full_name:<56} median {:>12.3?} ({samples} samples)", bencher.median);
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; returns `self` unchanged.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().to_string(), 10, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, |b| f(b, input));
        self
    }

    /// Finish the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 11, "warm-up + samples should all run");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7u64), &7u64, |b, n| {
            b.iter(|| total += *n)
        });
        group.finish();
        assert!(total >= 7 * 4);
    }
}
