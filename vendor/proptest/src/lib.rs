//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API the workspace's property
//! tests use — `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`,
//! `Just`, tuple and range strategies, `collection::vec`, `char::range`,
//! and the `proptest!`/`prop_assert*!`/`prop_oneof!` macros — backed by a
//! deterministic per-test RNG. Differences from upstream: **no shrinking**
//! (failures report the raw generated case) and no persistence/regression
//! files; case counts come from `ProptestConfig::with_cases` as usual.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 source used to generate cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every property has its own stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound.max(1) as u64) as usize
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values (upstream's `Strategy`, minus
    /// shrinking: `generate` replaces `new_tree`).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (retrying generation).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Recursive strategies: `self` is the leaf; `branch` builds one
        /// level from the strategy for the level below. `depth` bounds the
        /// recursion; `_desired_size`/`_expected_branch_size` are accepted
        /// for API compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let next_level = branch(current).boxed();
                current = Union::new(vec![leaf.clone(), next_level]).boxed();
            }
            current
        }

        /// Type-erase (and make cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Rc::new(self) }
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Rc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter (rejection sampling).
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    self.start + (self.end - self.start) * (rng.unit() as $t)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// `&str` is a strategy generating strings matching the pattern as a
    /// simple regex: literals, `.`, `[...]` classes (ranges, `\`-escapes),
    /// and the quantifiers `{m,n}`/`{n}`/`*`/`+`/`?`. This covers the
    /// patterns used in-tree; alternation and groups are not supported.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        #[derive(Debug)]
        enum Atom {
            Literal(char),
            Any,
            Class(Vec<(char, char)>),
        }

        fn sample_any(rng: &mut TestRng) -> char {
            // Mostly printable ASCII, occasionally any scalar value (minus
            // newline, matching regex `.`).
            loop {
                let c = if rng.below(10) < 9 {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                } else {
                    match char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                if c != '\n' {
                    return c;
                }
            }
        }

        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut entries: Vec<(char, char)> = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            entries.push((lo, hi));
                            i += 3;
                        } else {
                            entries.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated char class in pattern {pattern:?}");
                    i += 1; // skip ']'
                    Atom::Class(entries)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                            None => {
                                let n: usize = body.parse().unwrap();
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, lo, hi));
        }

        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Any => out.push(sample_any(rng)),
                    Atom::Class(entries) => {
                        let (start, end) = entries[rng.below(entries.len())];
                        let span = end as u32 - start as u32 + 1;
                        let v = start as u32 + (rng.next_u64() % span as u64) as u32;
                        out.push(char::from_u32(v).unwrap_or(start));
                    }
                }
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`] (`lo..hi`, half-open like upstream).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `char` in the inclusive range `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    /// See [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.lo as u32, self.hi as u32);
            loop {
                let v = lo + (rng.next_u64() % (hi - lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (fails the current case, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}", format!($($fmt)+), left
            )));
        }
    }};
}

/// Define property tests. Each function runs `config.cases` random cases;
/// a failing case panics with the case number (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("property {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_name("ranges_and_maps");
        let s = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn recursive_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i32..5).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("recursive_bounded");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_works(x in 0usize..100, mut v in crate::collection::vec(0u32..9, 0..4)) {
            v.push(x as u32);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(*v.last().unwrap(), x as u32);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
